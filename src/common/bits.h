/**
 * @file
 * Bit-manipulation primitives used throughout CFVA.
 *
 * The paper (Valero et al., ISCA 1992) manipulates binary addresses
 * a_{n-1..0} field-wise: the module-number component of every address
 * mapping is defined bit-by-bit (Eq. 1 and Eq. 2).  These helpers keep
 * that arithmetic readable and assert-checked in one place.
 */

#ifndef CFVA_COMMON_BITS_H
#define CFVA_COMMON_BITS_H

#include <cassert>
#include <cstdint>

namespace cfva {

/** One-dimensional memory address (the paper's A, bits a_{n-1..0}). */
using Addr = std::uint64_t;

/** Memory-module number (the paper's b, bits b_{m-1..0}). */
using ModuleId = std::uint32_t;

/** Processor cycle count. */
using Cycle = std::uint64_t;

/** Returns a mask with the low @p n bits set. @p n may be 0..64. */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Exact log2 of a power of two. */
constexpr unsigned
exactLog2(std::uint64_t v)
{
    assert(isPow2(v));
    return floorLog2(v);
}

/**
 * Extracts the bit field a_{first+width-1 .. first} of @p v.
 *
 * @param v     source word
 * @param first index of the least-significant bit of the field
 * @param width field width in bits
 */
constexpr std::uint64_t
bitField(std::uint64_t v, unsigned first, unsigned width)
{
    return (v >> first) & lowMask(width);
}

/** Extracts the single bit a_{i} of @p v. */
constexpr unsigned
bit(std::uint64_t v, unsigned i)
{
    return static_cast<unsigned>((v >> i) & 1);
}

/** Parity (XOR-reduction) of all bits of @p v; GF(2) dot product. */
constexpr unsigned
parity(std::uint64_t v)
{
    v ^= v >> 32;
    v ^= v >> 16;
    v ^= v >> 8;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return static_cast<unsigned>(v & 1);
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

/**
 * Number of trailing zero bits of @p v — the paper's family exponent x
 * when applied to a stride.  @p v must be nonzero.
 */
constexpr unsigned
trailingZeros(std::uint64_t v)
{
    assert(v != 0);
    unsigned c = 0;
    while ((v & 1) == 0) {
        v >>= 1;
        ++c;
    }
    return c;
}

/**
 * Inserts @p field into bits first..first+width-1 of @p v, replacing
 * whatever was there.
 */
constexpr std::uint64_t
insertField(std::uint64_t v, unsigned first, unsigned width,
            std::uint64_t field)
{
    const std::uint64_t m = lowMask(width) << first;
    return (v & ~m) | ((field << first) & m);
}

} // namespace cfva

#endif // CFVA_COMMON_BITS_H
