#include "common/stride.h"

#include <ostream>

#include "common/logging.h"

namespace cfva {

Stride::Stride(std::uint64_t value)
{
    cfva_assert(value > 0, "stride must be positive, got ", value);
    x_ = trailingZeros(value);
    sigma_ = value >> x_;
}

Stride
Stride::fromFamily(std::uint64_t sigma, unsigned x)
{
    cfva_assert(sigma % 2 == 1, "sigma must be odd, got ", sigma);
    cfva_assert(x < 63, "family exponent too large: ", x);
    return Stride(sigma, x);
}

std::ostream &
operator<<(std::ostream &os, const Stride &s)
{
    return os << s.value() << " (= " << s.sigma() << " * 2^"
              << s.family() << ")";
}

double
strideFamilyFraction(unsigned x)
{
    return 1.0 / static_cast<double>(std::uint64_t{1} << (x + 1));
}

} // namespace cfva
