/**
 * @file
 * VectorAccessUnit: the library's primary public API.
 *
 * Ties the whole system together: given a configuration (memory
 * shape + register length), it owns the address mapping, selects
 * the right ordering for each (A1, S, V) access — conflict-free
 * out-of-order inside the Theorem 1/3 windows, in-order where the
 * mapping is conflict free anyway, the Sec. 5C split for short
 * vectors — runs the request stream through the cycle-accurate
 * memory simulator, and reports the measured latency.
 */

#ifndef CFVA_CORE_ACCESS_UNIT_H
#define CFVA_CORE_ACCESS_UNIT_H

#include <string>
#include <vector>

#include "access/ordering.h"
#include "access/short_vector.h"
#include "core/config.h"
#include "mapping/mapping.h"
#include "memsys/memory_system.h"
#include "theory/theory.h"

namespace cfva {

class BackendCache;

/** How the unit decided to issue one access. */
enum class AccessPolicy
{
    InOrder,        //!< canonical order (in-window for x = s family,
                    //!< or fallback outside every window)
    ConflictFree,   //!< Sec. 3.2 / 4.2 reordering, minimum latency
    SplitShort,     //!< Sec. 5C head/tail split (V < L)
    ChunkedByL,     //!< Sec. 5C case ii: V = k*L, per-chunk scheme
};

const char *to_string(AccessPolicy policy);

/** A fully materialized access: policy, rationale, request stream. */
struct AccessPlan
{
    AccessPolicy policy = AccessPolicy::InOrder;
    Addr a1 = 0;
    Stride stride{1};
    std::uint64_t length = 0;

    /** Requests in issue order. */
    std::vector<Request> stream;

    /** True iff the plan should achieve minimum latency L+T+1. */
    bool expectConflictFree = false;

    /** Human-readable explanation of the choice (for examples);
     *  empty when the caller opted out (plan(..., explain=false) —
     *  the sweep hot path does, the strings cost more than the
     *  ordering decision itself). */
    std::string rationale;
};

/**
 * The vector memory-access module of Figure 1, combining mapping,
 * ordering selection, and the multi-module memory model.
 */
class VectorAccessUnit
{
  public:
    /** Builds the unit; the configuration is validated. */
    explicit VectorAccessUnit(const VectorUnitConfig &cfg);

    /** The conflict-free window of stride families this unit
     *  achieves for full-register accesses (Theorems 1 / 3). */
    theory::FamilyWindow window() const { return window_; }

    /** True iff family of @p s is inside window() — i.e. a
     *  full-register access of this stride is conflict free. */
    bool inWindow(const Stride &s) const;

    /**
     * Chooses an ordering for a vector access of @p length elements
     * with stride @p s starting at @p a1 (any address).  @p seed
     * donates its capacity to the plan's stream vector — pass a
     * recycled buffer (DeliveryArena::acquireRequests) to keep
     * batch planning allocation free; contents are discarded.
     * @p explain false skips building the rationale string.
     */
    AccessPlan plan(Addr a1, const Stride &s, std::uint64_t length,
                    std::vector<Request> seed = {},
                    bool explain = true) const;

    /**
     * Signed-stride overload.  The paper's analysis is symmetric in
     * the stride sign (Sec. 2 note): a negative stride visits the
     * same modules as the positive one walked from the other end,
     * so the plan is built for |S| from the lowest address and the
     * element indices are mirrored.  @p stride must be nonzero, and
     * for negative strides a1 >= (length-1)*|S| so no address
     * underflows.
     */
    AccessPlan plan(Addr a1, std::int64_t stride,
                    std::uint64_t length,
                    std::vector<Request> seed = {},
                    bool explain = true) const;

    /**
     * Runs a plan through the memory backend selected by
     * config().engine — the per-cycle reference or the event-driven
     * engine; both produce identical results.  When @p arena is
     * given, the result's delivery buffer is recycled through it.
     * When @p cache is given, the backend instance is taken from it
     * (and built into it on first use) instead of being rebuilt for
     * this one access — the sweep engine passes each worker's cache
     * so modules and event heaps are reused across all scenarios.
     *
     * @p tier selects the evaluation tier: SimulateAlways runs the
     * engine; TheoryFirst hands the plan to the analytic
     * TheoryBackend (the plan's expectConflictFree classification is
     * the claim hint) and simulates only when the claim is refused.
     * AuditBoth is resolved a layer up (runScenario runs both tiers
     * and compares); passing it here is an error.  When @p tiers is
     * given, the access is attributed to it as claimed or fallback
     * (under SimulateAlways: always fallback).
     *
     * @p path selects the backend's stream-premap variant (see
     * makeMemoryBackend); results are bit-identical either way.
     * @p collapse gates the single-port periodic fast path (also
     * bit-identical; Off is the pure stepped oracle).
     *
     * @p detail selects how much of a theory-claimed result is
     * materialized (see ResultDetail; simulated results are always
     * full).  Under TheoryFirst a plan the planner certified
     * conflict free (AccessPlan::expectConflictFree) is claimed
     * directly from the paper's window theorems — O(1) per access
     * when @p detail skips the deliveries — instead of being
     * re-proved element by element.
     */
    AccessResult execute(const AccessPlan &plan,
                         DeliveryArena *arena = nullptr,
                         BackendCache *cache = nullptr,
                         TierPolicy tier = TierPolicy::SimulateAlways,
                         TierCounters *tiers = nullptr,
                         MapPath path = MapPath::BitSliced,
                         CollapseMode collapse = CollapseMode::On,
                         ResultDetail detail =
                             ResultDetail::Full) const;

    /**
     * Runs P = streams.size() simultaneous request streams through
     * the port-aware backend selected by config().engine.  The
     * engine knob is honored for every port count; the per-cycle
     * and event-driven backends produce bit-identical results.
     * @p cache, @p tier, @p tiers, @p path, @p detail as in
     * execute(); the theory tier claims P > 1 accesses whose port
     * streams are provably module-disjoint and falls back to the
     * port-aware engine otherwise.
     */
    MultiPortResult
    executePorts(const std::vector<std::vector<Request>> &streams,
                 DeliveryArena *arena = nullptr,
                 BackendCache *cache = nullptr,
                 TierPolicy tier = TierPolicy::SimulateAlways,
                 TierCounters *tiers = nullptr,
                 MapPath path = MapPath::BitSliced,
                 CollapseMode collapse = CollapseMode::On,
                 ResultDetail detail = ResultDetail::Full) const;

    /** plan() + execute() in one call. */
    AccessResult access(Addr a1, const Stride &s,
                        std::uint64_t length) const;

    const VectorUnitConfig &config() const { return cfg_; }
    const ModuleMapping &mapping() const { return *mapping_; }
    MemConfig memConfig() const { return cfg_.memConfig(); }

  private:
    /** Plans one full-register (or period-multiple) access. */
    AccessPlan planExact(Addr a1, const Stride &s,
                         std::uint64_t length,
                         std::vector<Request> seed = {},
                         bool explain = true) const;

    /** The reorder key for conflict-free issue at family @p x. */
    std::function<ModuleId(Addr)> reorderKey(unsigned x) const;

    /** The XOR distance (w = s or y) to use for family @p x, or
     *  nullopt when x is outside every out-of-order window. */
    std::optional<unsigned> windowW(unsigned x) const;

    /** True iff in-order access of family @p x is conflict free on
     *  this mapping for any length (x = s matched; [s, s+m-t] for
     *  the simple unmatched mapping). */
    bool inOrderConflictFree(unsigned x) const;

    VectorUnitConfig cfg_;
    MappingPtr mapping_;
    const XorMatchedMapping *matched_ = nullptr;   // typed views
    const XorSectionedMapping *sectioned_ = nullptr;
    theory::FamilyWindow window_;
};

} // namespace cfva

#endif // CFVA_CORE_ACCESS_UNIT_H
