#include "core/chaining.h"

#include <algorithm>

#include "common/logging.h"

namespace cfva {

ChainingReport
chainingModel(const AccessResult &result, Cycle execLatency)
{
    cfva_assert(execLatency >= 1, "execute latency must be >= 1");
    cfva_assert(!result.deliveries.empty(), "empty access");

    ChainingReport report;
    report.loadDone = result.lastDelivery;
    report.chainable = result.conflictFree;

    const Cycle n = result.deliveries.size();

    // Decoupled: issue the first operand the cycle after the load
    // completes, one per cycle, plus the pipeline drain.
    report.decoupledTotal =
        result.lastDelivery + 1 + (n - 1) + execLatency;

    // Chained: operand k issues at max(delivered_k + 1, prev + 1).
    Cycle issue = 0;
    for (const auto &d : result.deliveries)
        issue = std::max(d.delivered + 1, issue + 1);
    report.chainedTotal = issue + execLatency;

    return report;
}

ChainCosts
chainCosts(const AccessResult &load, Cycle execLatency)
{
    const ChainingReport report = chainingModel(load, execLatency);
    // Totals are measured from the load's first issue; subtracting
    // the cycle after the last delivery leaves the execute step's
    // own contribution.
    const Cycle loadEnd = load.lastDelivery + 1;
    ChainCosts costs;
    costs.decoupled = report.decoupledTotal - loadEnd;
    costs.chained = report.chainedTotal - loadEnd;
    costs.chainable = report.chainable;
    return costs;
}

} // namespace cfva
