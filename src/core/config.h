/**
 * @file
 * Configuration of the vector memory-access unit.
 *
 * Gathers the paper's parameters in one validated struct: the
 * memory shape (matched M = T, simple unmatched, or sectioned
 * M = T^2), the register length L = 2^lambda, and the transform
 * parameters s and y with the paper's recommended defaults
 * s = lambda-t (Sec. 3.3) and y = 2(lambda-t)+1 (Sec. 4.3).
 */

#ifndef CFVA_CORE_CONFIG_H
#define CFVA_CORE_CONFIG_H

#include <cstdint>
#include <optional>
#include <string>

#include "common/bits.h"
#include "memsys/backend.h"
#include "memsys/memory_system.h"

namespace cfva {

/** Which memory organization to build. */
enum class MemoryKind
{
    /** Sec. 3: M = T modules, Eq. 1 mapping. */
    Matched,

    /**
     * Sec. 4 opening: M = 2^m > T modules, Eq. 1 mapping with t
     * replaced by m; in-order access covers [s, s+m-t] and
     * out-of-order extends below s.
     */
    SimpleUnmatched,

    /** Sec. 4.1: M = T^2 modules, Eq. 2 sectioned mapping. */
    Sectioned,

    /**
     * Prior art [11] (Harper & Linebarger): field interleaving
     * tuned so one stride family is conflict free in order.  The
     * tuning is fixed per unit (dynamicTune); every other family
     * takes whatever latency the simulator measures — the workload
     * the paper's static windows are argued against.
     */
    DynamicTuned,

    /**
     * Prior art [12] (Rau): pseudo-random GF(2) interleaving.  No
     * family is guaranteed minimum latency and none is
     * pathologically serialized; all accesses issue in order.
     */
    PseudoRandom,
};

const char *to_string(MemoryKind kind);

// EngineKind (per-cycle vs event-driven) lives with the backends it
// selects: memsys/backend.h, included above.

/** Validated parameters of a vector access unit. */
struct VectorUnitConfig
{
    MemoryKind kind = MemoryKind::Matched;

    unsigned t = 3;      //!< log2 of memory/processor cycle ratio
    unsigned lambda = 7; //!< log2 of the vector-register length

    /**
     * log2 of the module count.  Defaults by kind: t (matched),
     * 2t (sectioned); must be set explicitly for SimpleUnmatched.
     */
    std::optional<unsigned> mOverride;

    /** XOR distance; default s = lambda - t (Sec. 3.3). */
    std::optional<unsigned> sOverride;

    /** Section position; default y = 2(lambda-t)+1 (Sec. 4.3). */
    std::optional<unsigned> yOverride;

    unsigned inputBuffers = 2;  //!< q (the Sec. 3.1 bound needs 2)
    unsigned outputBuffers = 1; //!< q'

    /**
     * DynamicTuned only: the field position p — the stride family
     * the interleave is tuned for.
     */
    unsigned dynamicTune = 0;

    /** PseudoRandom only: seed of the GF(2) matrix. */
    std::uint64_t prandSeed = 0x52A5ull;

    /** Which simulation engine access() / execute() /
     *  executePorts() run on — honored for every port count. */
    EngineKind engine = EngineKind::PerCycle;

    unsigned m() const;
    unsigned s() const;
    unsigned y() const;

    std::uint64_t registerLength() const
    {
        return std::uint64_t{1} << lambda;
    }

    Cycle serviceCycles() const { return Cycle{1} << t; }

    /** The memsys shape implied by this configuration. */
    MemConfig memConfig() const;

    /**
     * Checks every paper precondition (s >= t, y >= s+t,
     * lambda >= m, ...); calls cfva_fatal with a diagnostic on the
     * first violation.
     */
    void validate() const;

    /**
     * One-line summary for logs and bench headers.  Deliberately
     * excludes the engine: both engines produce identical results,
     * and sweep reports keyed by this label must compare equal
     * across engines (the cfva_sweep cross-check relies on it).
     */
    std::string describe() const;
};

/** The paper's running matched example: L = 128, M = T = 8, s = 4. */
VectorUnitConfig paperMatchedExample();

/** The paper's unmatched example: L = 128, T = 8, M = 64, s = 4,
 *  y = 9. */
VectorUnitConfig paperSectionedExample();

} // namespace cfva

#endif // CFVA_CORE_CONFIG_H
