#include "core/access_unit.h"

#include <sstream>

#include "common/logging.h"
#include "mapping/dynamic.h"
#include "mapping/gf2_linear.h"
#include "mapping/prand.h"
#include "mapping/xor_matched.h"
#include "mapping/xor_sectioned.h"
#include "memsys/backend.h"
#include "memsys/backend_cache.h"
#include "theory/theory_backend.h"

namespace cfva {

const char *
to_string(AccessPolicy policy)
{
    switch (policy) {
      case AccessPolicy::InOrder:
        return "in-order";
      case AccessPolicy::ConflictFree:
        return "conflict-free";
      case AccessPolicy::SplitShort:
        return "split-short";
      case AccessPolicy::ChunkedByL:
        return "chunked-by-L";
    }
    return "?";
}

VectorAccessUnit::VectorAccessUnit(const VectorUnitConfig &cfg)
    : cfg_(cfg)
{
    cfg_.validate();

    const unsigned t = cfg_.t;
    const unsigned lambda = cfg_.lambda;

    switch (cfg_.kind) {
      case MemoryKind::Matched: {
        const unsigned s = cfg_.s();
        auto map = std::make_unique<XorMatchedMapping>(t, s);
        matched_ = map.get();
        mapping_ = std::move(map);
        window_ = theory::matchedWindow(s, t, lambda);
        break;
      }
      case MemoryKind::SimpleUnmatched: {
        const unsigned s = cfg_.s();
        const unsigned m = cfg_.m();
        cfva_assert(s >= m,
                    "Eq. 1 with t replaced by m needs s >= m (s=",
                    s, ", m=", m, ")");
        auto map = std::make_unique<XorMatchedMapping>(m, s);
        matched_ = map.get();
        mapping_ = std::move(map);
        window_ = theory::simpleUnmatchedWindow(s, m, t, lambda);
        break;
      }
      case MemoryKind::Sectioned: {
        const unsigned s = cfg_.s();
        const unsigned y = cfg_.y();
        auto map = std::make_unique<XorSectionedMapping>(t, s, y);
        sectioned_ = map.get();
        mapping_ = std::move(map);
        const auto wins = theory::sectionedWindows(s, y, t, lambda);
        if (wins.fused()) {
            window_ = wins.fusedWindow();
        } else {
            cfva_warn("sectioned windows [", wins.low.lo, ",",
                      wins.low.hi, "] and [", wins.high.lo, ",",
                      wins.high.hi, "] do not fuse; window() reports "
                      "the hull but the gap is not conflict free");
            window_ = {wins.low.lo, wins.high.hi};
        }
        break;
      }
      case MemoryKind::DynamicTuned: {
        // Prior art [11]: in-order access is conflict free exactly
        // for the tuned family p; there is no out-of-order window.
        const unsigned p = cfg_.dynamicTune;
        mapping_ = std::make_unique<DynamicFieldMapping>(cfg_.m(), p);
        window_ = {static_cast<int>(p), static_cast<int>(p)};
        break;
      }
      case MemoryKind::PseudoRandom: {
        // Prior art [12]: no family is guaranteed minimum latency;
        // the window is empty and every access issues in order.
        // 48 address bits comfortably cover every sweep grid.
        mapping_ = std::make_unique<GF2LinearMapping>(
            makePseudoRandomMapping(cfg_.m(), 48, cfg_.prandSeed));
        window_ = {};
        break;
      }
    }
}

bool
VectorAccessUnit::inWindow(const Stride &s) const
{
    const unsigned x = s.family();
    if (cfg_.kind == MemoryKind::Sectioned) {
        const auto wins = theory::sectionedWindows(cfg_.s(), cfg_.y(),
                                                   cfg_.t, cfg_.lambda);
        return wins.low.contains(x) || wins.high.contains(x);
    }
    return window_.contains(x);
}

std::optional<unsigned>
VectorAccessUnit::windowW(unsigned x) const
{
    switch (cfg_.kind) {
      case MemoryKind::Matched:
      case MemoryKind::SimpleUnmatched:
        if (x <= cfg_.s())
            return cfg_.s();
        return std::nullopt;
      case MemoryKind::Sectioned:
        if (x <= cfg_.s())
            return cfg_.s();
        if (x <= cfg_.y())
            return cfg_.y();
        return std::nullopt;
      case MemoryKind::DynamicTuned:
      case MemoryKind::PseudoRandom:
        // No subsequence theorems apply to the prior-art mappings.
        return std::nullopt;
    }
    return std::nullopt;
}

bool
VectorAccessUnit::inOrderConflictFree(unsigned x) const
{
    switch (cfg_.kind) {
      case MemoryKind::Matched:
        // Eq. 1 in order: exactly the x = s family ([6]).
        return x == cfg_.s();
      case MemoryKind::SimpleUnmatched:
        // Eq. 1 with t -> m in order: s <= x <= s+m-t ([6]).
        return x >= cfg_.s()
               && x <= cfg_.s() + cfg_.m() - cfg_.t;
      case MemoryKind::Sectioned:
        // x = s: consecutive elements step the Eq. 1 core field by
        // sigma, so any T consecutive requests differ in the low t
        // module bits.  x = y: ditto for the section field.  These
        // are the paper's two any-length families (Sec. 5H).
        return x == cfg_.s() || x == cfg_.y();
      case MemoryKind::DynamicTuned:
        // The tuned family steps the module field by the odd sigma,
        // cycling all 2^m >= T modules: conflict free in order for
        // any length and start ([11]).
        return x == cfg_.dynamicTune;
      case MemoryKind::PseudoRandom:
        // By design nothing is guaranteed ([12]).
        return false;
    }
    return false;
}

std::function<ModuleId(Addr)>
VectorAccessUnit::reorderKey(unsigned x) const
{
    const Cycle t_mask = (Cycle{1} << cfg_.t) - 1;
    switch (cfg_.kind) {
      case MemoryKind::Matched:
        // Key = the module number itself.
        return [map = matched_](Addr a) { return map->moduleOf(a); };
      case MemoryKind::SimpleUnmatched:
        // Key = low t bits of the module number: Lemma 2 guarantees
        // these cycle through all 2^t values in a subsequence, and
        // differing low bits imply differing modules.
        return [map = matched_, t_mask](Addr a) {
            return static_cast<ModuleId>(map->moduleOf(a) & t_mask);
        };
      case MemoryKind::Sectioned:
        if (x <= cfg_.s()) {
            // Supermodule order (Sec. 4.2 case i).
            return [map = sectioned_](Addr a) {
                return map->supermoduleOf(a);
            };
        }
        // Section order (Sec. 4.2 case ii).
        return [map = sectioned_](Addr a) {
            return map->sectionOf(a);
        };
      case MemoryKind::DynamicTuned:
      case MemoryKind::PseudoRandom:
        // windowW() is nullopt for these kinds, so the planner
        // never asks them for a reorder key.
        break;
    }
    cfva_panic("unreachable memory kind");
}

AccessPlan
VectorAccessUnit::planExact(Addr a1, const Stride &s,
                            std::uint64_t length,
                            std::vector<Request> seed,
                            bool explain) const
{
    AccessPlan plan;
    plan.a1 = a1;
    plan.stride = s;
    plan.length = length;

    const unsigned x = s.family();

    if (inOrderConflictFree(x)) {
        plan.policy = AccessPolicy::InOrder;
        plan.expectConflictFree = true;
        plan.stream = canonicalOrder(a1, s, length, std::move(seed));
        if (explain) {
            std::ostringstream why;
            why << "family x=" << x
                << " is conflict free in order on "
                << mapping_->name();
            plan.rationale = why.str();
        }
        return plan;
    }

    const auto w = windowW(x);
    if (w && subsequencePlanExists(cfg_.t, *w, s, length)) {
        const auto sub = makeSubsequencePlan(cfg_.t, *w, s, length);
        plan.policy = AccessPolicy::ConflictFree;
        plan.expectConflictFree = true;
        plan.stream = conflictFreeOrderByKey(a1, sub, reorderKey(x),
                                             std::move(seed));
        if (explain) {
            std::ostringstream why;
            why << "family x=" << x << " in window via w=" << *w
                << ": Sec. " << (cfg_.kind == MemoryKind::Sectioned
                                 ? "4.2" : "3.2")
                << " out-of-order issue";
            plan.rationale = why.str();
        }
        return plan;
    }

    plan.policy = AccessPolicy::InOrder;
    plan.expectConflictFree = false;
    plan.stream = canonicalOrder(a1, s, length, std::move(seed));
    if (explain) {
        std::ostringstream why;
        why << "family x=" << x << " outside every window (vector "
            << "not T-matched); canonical order";
        plan.rationale = why.str();
    }
    return plan;
}

AccessPlan
VectorAccessUnit::plan(Addr a1, const Stride &s,
                       std::uint64_t length,
                       std::vector<Request> seed,
                       bool explain) const
{
    cfva_assert(length > 0, "empty access");
    const std::uint64_t reg_len = cfg_.registerLength();
    const unsigned x = s.family();

    if (length == reg_len)
        return planExact(a1, s, length, std::move(seed), explain);

    if (length > reg_len && length % reg_len == 0) {
        // Sec. 5C case ii: multiple-size registers; apply the
        // register-length scheme to each portion.  Each chunk is
        // individually conflict free; the seams may cost up to T-1
        // cycles each, which the simulator measures honestly.
        AccessPlan plan;
        plan.policy = AccessPolicy::ChunkedByL;
        plan.a1 = a1;
        plan.stride = s;
        plan.length = length;
        plan.stream = std::move(seed);
        plan.stream.clear();
        plan.stream.reserve(length);
        const std::uint64_t chunks = length / reg_len;
        for (std::uint64_t c = 0; c < chunks; ++c) {
            const Addr chunk_a1 = a1 + s.value() * (c * reg_len);
            AccessPlan sub =
                planExact(chunk_a1, s, reg_len, {}, explain);
            for (auto &req : sub.stream)
                req.element += c * reg_len;
            plan.stream.insert(plan.stream.end(), sub.stream.begin(),
                               sub.stream.end());
            if (c == 0)
                plan.expectConflictFree = sub.expectConflictFree;
            else
                plan.expectConflictFree &= sub.expectConflictFree;
        }
        // Seams between chunks are not covered by Theorem 1/3; only
        // a fully in-order stream keeps the guarantee end to end.
        if (plan.expectConflictFree && chunks > 1
            && !inOrderConflictFree(x)) {
            plan.expectConflictFree = false;
        }
        if (explain) {
            std::ostringstream why;
            why << "V = " << chunks << " * L: per-portion scheme "
                << "(Sec. 5C case ii)";
            plan.rationale = why.str();
        }
        return plan;
    }

    if (inOrderConflictFree(x)) {
        AccessPlan plan;
        plan.policy = AccessPolicy::InOrder;
        plan.a1 = a1;
        plan.stride = s;
        plan.length = length;
        plan.expectConflictFree = true;
        plan.stream = canonicalOrder(a1, s, length, std::move(seed));
        if (explain) {
            plan.rationale = "in-order family; any length is "
                             "conflict free";
        }
        return plan;
    }

    // Sec. 5C case i: short vector; split into an out-of-order head
    // of length k*2^{w+t-x} and an in-order tail.
    AccessPlan plan;
    plan.policy = AccessPolicy::SplitShort;
    plan.a1 = a1;
    plan.stride = s;
    plan.length = length;

    const auto w = windowW(x);
    if (!w) {
        plan.policy = AccessPolicy::InOrder;
        plan.expectConflictFree = false;
        plan.stream = canonicalOrder(a1, s, length, std::move(seed));
        if (explain) {
            plan.rationale = "family outside every window; "
                             "canonical order";
        }
        return plan;
    }

    const auto split = planShortVector(cfg_.t, *w, s, length);
    plan.stream = shortVectorOrder(a1, s, split, reorderKey(x),
                                   std::move(seed));
    plan.expectConflictFree =
        split.hasReorderedPart() && split.ordered == 0;
    if (explain) {
        std::ostringstream why;
        why << "short vector: " << split.reordered
            << " elements out of order + " << split.ordered
            << " in order (Sec. 5C)";
        plan.rationale = why.str();
    }
    return plan;
}

AccessPlan
VectorAccessUnit::plan(Addr a1, std::int64_t stride,
                       std::uint64_t length,
                       std::vector<Request> seed,
                       bool explain) const
{
    cfva_assert(stride != 0, "stride must be nonzero");
    if (stride > 0)
        return plan(a1, Stride(static_cast<std::uint64_t>(stride)),
                    length, std::move(seed), explain);

    const std::uint64_t mag =
        static_cast<std::uint64_t>(-stride);
    cfva_assert(a1 >= (length - 1) * mag,
                "negative-stride access underflows address 0: a1=",
                a1, ", |S|=", mag, ", V=", length);

    // Walk the same addresses from the low end and mirror the
    // element numbering: element i of the descending vector is
    // element length-1-i of the ascending one.
    const Addr low_a1 = a1 - (length - 1) * mag;
    AccessPlan p = plan(low_a1, Stride(mag), length,
                        std::move(seed), explain);
    for (auto &req : p.stream)
        req.element = length - 1 - req.element;
    p.a1 = a1;
    if (explain)
        p.rationale += " (descending: mirrored from ascending twin)";
    return p;
}

AccessResult
VectorAccessUnit::execute(const AccessPlan &plan,
                          DeliveryArena *arena, BackendCache *cache,
                          TierPolicy tier, TierCounters *tiers,
                          MapPath path, CollapseMode collapse,
                          ResultDetail detail) const
{
    cfva_assert(tier != TierPolicy::AuditBoth,
                "AuditBoth is resolved by the caller running both "
                "tiers; execute() takes a single tier");
    if (tier == TierPolicy::TheoryFirst) {
        // Certified plans are claimed on the planner's window
        // theorems (O(1) under summary detail); everything else goes
        // straight to the steady-state solver — the per-element
        // proof would only re-derive what the windows already said.
        const auto answer = [&](TheoryBackend &tb) {
            AccessResult r =
                plan.expectConflictFree
                    ? tb.runSingleCertified(plan.stream, arena,
                                            detail)
                    : tb.runSingleHinted(false, plan.stream, arena,
                                         detail);
            if (tiers) {
                tiers->add(tb.lastClaimed());
                tiers->lastReason = tb.lastReason();
            }
            return r;
        };
        if (cache) {
            return answer(cache->theoryBackendFor(
                cfg_.engine, cfg_.memConfig(), *mapping_, path,
                collapse));
        }
        TheoryBackend tb(
            cfg_.memConfig(), *mapping_,
            makeMemoryBackend(cfg_.engine, cfg_.memConfig(),
                              *mapping_, path, collapse),
            path);
        return answer(tb);
    }
    if (tiers)
        tiers->add(false);
    if (cache) {
        return cache
            ->backendFor(cfg_.engine, cfg_.memConfig(), *mapping_,
                         path, collapse)
            .runSingle(plan.stream, arena);
    }
    return makeMemoryBackend(cfg_.engine, cfg_.memConfig(), *mapping_,
                             path, collapse)
        ->runSingle(plan.stream, arena);
}

MultiPortResult
VectorAccessUnit::executePorts(
    const std::vector<std::vector<Request>> &streams,
    DeliveryArena *arena, BackendCache *cache, TierPolicy tier,
    TierCounters *tiers, MapPath path, CollapseMode collapse,
    ResultDetail detail) const
{
    cfva_assert(tier != TierPolicy::AuditBoth,
                "AuditBoth is resolved by the caller running both "
                "tiers; executePorts() takes a single tier");
    if (tier == TierPolicy::TheoryFirst) {
        const auto answer = [&](TheoryBackend &tb) {
            MultiPortResult r = tb.runPorts(streams, arena, detail);
            if (tiers) {
                tiers->add(tb.lastClaimed());
                tiers->lastReason = tb.lastReason();
            }
            return r;
        };
        if (cache) {
            return answer(cache->theoryBackendFor(
                cfg_.engine, cfg_.memConfig(), *mapping_, path,
                collapse));
        }
        TheoryBackend tb(
            cfg_.memConfig(), *mapping_,
            makeMemoryBackend(cfg_.engine, cfg_.memConfig(),
                              *mapping_, path, collapse),
            path);
        return answer(tb);
    }
    if (tiers)
        tiers->add(false);
    if (cache) {
        return cache
            ->backendFor(cfg_.engine, cfg_.memConfig(), *mapping_,
                         path, collapse)
            .run(streams, arena);
    }
    return makeMemoryBackend(cfg_.engine, cfg_.memConfig(), *mapping_,
                             path, collapse)
        ->run(streams, arena);
}

AccessResult
VectorAccessUnit::access(Addr a1, const Stride &s,
                         std::uint64_t length) const
{
    return execute(plan(a1, s, length));
}

} // namespace cfva
