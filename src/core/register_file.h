/**
 * @file
 * Vector register file with FIFO or random-access write ports.
 *
 * Sec. 5D: "To support the out-of-order access, elements of the
 * vector register have to be addressed out of order.  Consequently,
 * this register has to be of the random access type, whereas for
 * ordered access and return a FIFO organization is adequate."  This
 * class models both organizations; a FIFO-organized file rejects
 * out-of-order writes, which the tests use to demonstrate *why* the
 * paper requires the random-access organization.
 */

#ifndef CFVA_CORE_REGISTER_FILE_H
#define CFVA_CORE_REGISTER_FILE_H

#include <cstdint>
#include <vector>

#include "access/hw_cost.h"

namespace cfva {

/** A file of vector registers holding 64-bit elements. */
class VectorRegisterFile
{
  public:
    /**
     * @param registers  number of vector registers
     * @param length     elements per register (the L of the paper)
     * @param org        write-port organization
     */
    VectorRegisterFile(unsigned registers, std::uint64_t length,
                       RegisterFileOrg org);

    /**
     * Starts a new vector write into register @p reg (a LOAD);
     * resets the FIFO pointer for FIFO-organized files.
     */
    void beginWrite(unsigned reg);

    /**
     * Writes element @p elem of register @p reg.  For a FIFO
     * organization, panics unless @p elem is exactly the next
     * sequential index — the reason out-of-order return requires a
     * random-access file.
     */
    void write(unsigned reg, std::uint64_t elem, std::uint64_t value);

    /** Reads element @p elem of register @p reg. */
    std::uint64_t read(unsigned reg, std::uint64_t elem) const;

    /** True iff all @p length elements of @p reg have been written
     *  since the last beginWrite. */
    bool complete(unsigned reg) const;

    unsigned registers() const
    {
        return static_cast<unsigned>(data_.size());
    }
    std::uint64_t length() const { return length_; }
    RegisterFileOrg organization() const { return org_; }

  private:
    std::uint64_t length_;
    RegisterFileOrg org_;
    std::vector<std::vector<std::uint64_t>> data_;
    std::vector<std::vector<bool>> written_;
    std::vector<std::uint64_t> writeCount_;
    std::vector<std::uint64_t> fifoNext_;
};

} // namespace cfva

#endif // CFVA_CORE_REGISTER_FILE_H
