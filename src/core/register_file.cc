#include "core/register_file.h"

#include "common/logging.h"

namespace cfva {

VectorRegisterFile::VectorRegisterFile(unsigned registers,
                                       std::uint64_t length,
                                       RegisterFileOrg org)
    : length_(length), org_(org)
{
    cfva_assert(registers >= 1, "need at least one register");
    cfva_assert(length >= 1, "register length must be positive");
    data_.assign(registers, std::vector<std::uint64_t>(length, 0));
    written_.assign(registers, std::vector<bool>(length, false));
    writeCount_.assign(registers, 0);
    fifoNext_.assign(registers, 0);
}

void
VectorRegisterFile::beginWrite(unsigned reg)
{
    cfva_assert(reg < registers(), "register ", reg, " out of range");
    written_[reg].assign(length_, false);
    writeCount_[reg] = 0;
    fifoNext_[reg] = 0;
}

void
VectorRegisterFile::write(unsigned reg, std::uint64_t elem,
                          std::uint64_t value)
{
    cfva_assert(reg < registers(), "register ", reg, " out of range");
    cfva_assert(elem < length_, "element ", elem, " out of range");
    if (org_ == RegisterFileOrg::Fifo) {
        cfva_assert(elem == fifoNext_[reg],
                    "FIFO register file written out of order: got "
                    "element ", elem, ", expected ", fifoNext_[reg],
                    " (out-of-order return needs a random-access "
                    "file, paper Sec. 5D)");
        ++fifoNext_[reg];
    }
    data_[reg][elem] = value;
    if (!written_[reg][elem]) {
        written_[reg][elem] = true;
        ++writeCount_[reg];
    }
}

std::uint64_t
VectorRegisterFile::read(unsigned reg, std::uint64_t elem) const
{
    cfva_assert(reg < registers(), "register ", reg, " out of range");
    cfva_assert(elem < length_, "element ", elem, " out of range");
    return data_[reg][elem];
}

bool
VectorRegisterFile::complete(unsigned reg) const
{
    cfva_assert(reg < registers(), "register ", reg, " out of range");
    return writeCount_[reg] == length_;
}

} // namespace cfva
