#include "core/config.h"

#include <sstream>

#include "common/logging.h"

namespace cfva {

const char *
to_string(MemoryKind kind)
{
    switch (kind) {
      case MemoryKind::Matched:
        return "matched";
      case MemoryKind::SimpleUnmatched:
        return "simple-unmatched";
      case MemoryKind::Sectioned:
        return "sectioned";
      case MemoryKind::DynamicTuned:
        return "dynamic";
      case MemoryKind::PseudoRandom:
        return "prand";
    }
    return "?";
}

unsigned
VectorUnitConfig::m() const
{
    if (mOverride)
        return *mOverride;
    switch (kind) {
      case MemoryKind::Matched:
      case MemoryKind::DynamicTuned:
      case MemoryKind::PseudoRandom:
        return t;
      case MemoryKind::Sectioned:
        return 2 * t;
      case MemoryKind::SimpleUnmatched:
        cfva_fatal("SimpleUnmatched requires an explicit module "
                   "count (mOverride)");
    }
    return t;
}

unsigned
VectorUnitConfig::s() const
{
    if (sOverride)
        return *sOverride;
    cfva_assert(lambda >= 2 * t,
                "default s = lambda-t needs lambda >= 2t (lambda=",
                lambda, ", t=", t, ")");
    return lambda - t;
}

unsigned
VectorUnitConfig::y() const
{
    if (yOverride)
        return *yOverride;
    return 2 * (lambda - t) + 1;
}

MemConfig
VectorUnitConfig::memConfig() const
{
    MemConfig mc;
    mc.m = m();
    mc.t = t;
    mc.inputBuffers = inputBuffers;
    mc.outputBuffers = outputBuffers;
    return mc;
}

void
VectorUnitConfig::validate() const
{
    if (t < 1 || t > 8)
        cfva_fatal("t out of supported range [1,8]: ", t);
    if (lambda < t)
        cfva_fatal("register length 2^", lambda,
                   " shorter than service time 2^", t);
    if (lambda > 24)
        cfva_fatal("lambda out of supported range: ", lambda);
    if (inputBuffers < 1 || outputBuffers < 1)
        cfva_fatal("buffers must be >= 1");

    const unsigned mm = m();
    if (mm < t)
        cfva_fatal("fewer modules (2^", mm, ") than the service "
                   "ratio (2^", t, ") cannot sustain one access "
                   "per cycle");
    if (lambda < mm)
        cfva_fatal("the paper requires lambda >= m (lambda=", lambda,
                   ", m=", mm, ")");

    // The s/y transform parameters only exist for the paper's XOR
    // organizations; the prior-art kinds have their own knobs.
    auto checkS = [&]() {
        const unsigned ss = s();
        if (ss < t)
            cfva_fatal("Eq. 1/2 require s >= t (s=", ss, ", t=", t,
                       ")");
        if (ss > lambda - t)
            cfva_warn("s=", ss, " > lambda-t=", lambda - t,
                      ": family x=0 (odd strides) falls outside the "
                      "conflict-free window");
        return ss;
    };

    switch (kind) {
      case MemoryKind::Matched:
        if (mm != t)
            cfva_fatal("matched memory requires m == t, got m=", mm);
        checkS();
        break;
      case MemoryKind::SimpleUnmatched:
        checkS();
        break;
      case MemoryKind::Sectioned: {
        if (mm != 2 * t)
            cfva_fatal("sectioned memory (Sec. 4.1) is defined for "
                       "m = 2t, got m=", mm);
        const unsigned ss = checkS();
        const unsigned yy = y();
        if (yy < ss + t)
            cfva_fatal("Eq. 2 requires y >= s+t (y=", yy, ", s=", ss,
                       ", t=", t, ")");
        break;
      }
      case MemoryKind::DynamicTuned:
        if (dynamicTune + mm > 63)
            cfva_fatal("dynamic field position p=", dynamicTune,
                       " pushes the module field past bit 63");
        break;
      case MemoryKind::PseudoRandom:
        break;
    }
}

std::string
VectorUnitConfig::describe() const
{
    std::ostringstream os;
    os << to_string(kind) << " M=" << (1u << m()) << " T="
       << (1u << t) << " L=" << registerLength();
    switch (kind) {
      case MemoryKind::Matched:
      case MemoryKind::SimpleUnmatched:
        os << " s=" << s();
        break;
      case MemoryKind::Sectioned:
        os << " s=" << s() << " y=" << y();
        break;
      case MemoryKind::DynamicTuned:
        os << " p=" << dynamicTune;
        break;
      case MemoryKind::PseudoRandom:
        os << " seed=" << prandSeed;
        break;
    }
    os << " q=" << inputBuffers << " q'=" << outputBuffers;
    return os.str();
}

VectorUnitConfig
paperMatchedExample()
{
    VectorUnitConfig cfg;
    cfg.kind = MemoryKind::Matched;
    cfg.t = 3;
    cfg.lambda = 7; // L = 128
    // s defaults to lambda - t = 4, the Sec. 3.3 example choice.
    cfg.validate();
    return cfg;
}

VectorUnitConfig
paperSectionedExample()
{
    VectorUnitConfig cfg;
    cfg.kind = MemoryKind::Sectioned;
    cfg.t = 3;
    cfg.lambda = 7; // L = 128, M = 64
    // s defaults to 4 and y to 9, the Sec. 4.3 example choices.
    cfg.validate();
    return cfg;
}

} // namespace cfva
