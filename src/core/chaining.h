/**
 * @file
 * LOAD/EXECUTE chaining model (paper Sec. 5F).
 *
 * With in-order access and buffers, element arrival times are
 * erratic, making chaining impractical.  The conflict-free scheme
 * returns one element per cycle in a deterministic order, so an
 * execute unit that consumes operands in that same order can chain:
 * each element is used the cycle after it arrives.  This module
 * computes total times for the decoupled and chained modes from a
 * simulated AccessResult.
 */

#ifndef CFVA_CORE_CHAINING_H
#define CFVA_CORE_CHAINING_H

#include "memsys/request.h"

namespace cfva {

/** Timing comparison of decoupled vs chained execution. */
struct ChainingReport
{
    /** Cycle the LOAD finished (last element delivered). */
    Cycle loadDone = 0;

    /**
     * Decoupled total: the execute unit starts only after the whole
     * register is loaded (the paper's default mode), issuing one
     * element per cycle.
     */
    Cycle decoupledTotal = 0;

    /**
     * Chained total: the execute unit consumes elements in delivery
     * order, each at the cycle after its arrival (subject to its
     * own one-per-cycle issue limit).
     */
    Cycle chainedTotal = 0;

    /**
     * True iff delivery was one element per cycle in a
     * deterministic order — the Sec. 5F precondition.  When false,
     * chainedTotal still reports the (erratic) achievable time.
     */
    bool chainable = false;

    /** Cycles saved by chaining. */
    Cycle
    saved() const
    {
        return decoupledTotal - chainedTotal;
    }
};

/**
 * Builds the chaining comparison for one executed access.
 *
 * @param result       simulator output for the LOAD
 * @param execLatency  pipeline depth of the execute unit (cycles
 *                     from operand issue to result)
 */
ChainingReport chainingModel(const AccessResult &result,
                             Cycle execLatency = 1);

/**
 * The EXECUTE step's cost *beyond the load's completion*, for
 * composing program sequences: a program that runs accesses back to
 * back totals sum(access latencies) + the execute extras below.
 * Shared by the vector processor's chained arithmetic timing and
 * the sweep engine's workload programs so both derive from the same
 * Sec. 5F model of the load's delivery stream.
 */
struct ChainCosts
{
    /** Decoupled: issue all V operands after the load completes,
     *  one per cycle, plus the pipeline drain: (V-1) + execLatency
     *  extra cycles. */
    Cycle decoupled = 0;

    /** Chained: operands track deliveries one cycle behind; for a
     *  conflict-free load only the execLatency drain remains. */
    Cycle chained = 0;

    /** The Sec. 5F precondition held (deterministic one-per-cycle
     *  delivery). */
    bool chainable = false;

    /** Cycles chaining saves on this execute step. */
    Cycle saved() const { return decoupled - chained; }
};

/** Derives the composable execute-step costs from the load's
 *  simulated delivery stream (via chainingModel). */
ChainCosts chainCosts(const AccessResult &load, Cycle execLatency = 1);

} // namespace cfva

#endif // CFVA_CORE_CHAINING_H
